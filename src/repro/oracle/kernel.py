"""The vectorized batch query kernel: one numpy pass per batch.

The scalar batch path answers each pair with a Python loop over two
label slices — fast per query, but interpreter overhead caps a whole
batch at ~10^5 pairs/sec.  This module evaluates an entire batch with
a handful of numpy array operations instead:

1. **packed key views** (built once per store, reused by every batch)
   — a label side's CSR arrays are already globally sorted by
   (owner, pivot), so each side gets one flat integer key array
   ``owner * base + pivot``.  The build is a single vectorized pass;
   v3 stores rebuild their delta-encoded pivot ids with one cumulative
   sum here, which is the only time the compact arrays are ever
   expanded (their distance and offset arrays keep serving as-is,
   memory-mapped);
2. **orient and group** — on undirected stores each pair is flipped so
   the *smaller* label is the one expanded (``dist(s, t) ==
   dist(t, s)`` — the same smaller-side trick the scalar dict probe
   uses), then pairs are sorted by source vertex;
3. **gather** — every pair's target-side label slice is pulled into
   one contiguous key array with a vectorized ranges trick and shifted
   by ``(s - t) * base``, turning the per-pair merge join into exact
   key equality against the source side;
4. **join** — either **dense**: walk the source vertices in blocks,
   scatter each block's label entries into a cache-resident
   epoch-stamped table and answer every target entry with O(1)
   gathers (the vectorized twin of the scalar path's dict probe), or
   **sorted**: one global ``np.searchsorted`` of the gathered keys
   into the source side's key array (used when the vertex count makes
   a useful table too large, or the batch too small to amortise the
   scatter);
5. **segment min** — ``np.minimum.reduceat`` reduces the matched
   ``d1 + d2`` sums back to one distance per pair.

Answers are **bit-identical** to the scalar helpers in
:mod:`repro.core.flatstore`: the same float64 sums are formed, and the
minimum of a set of floats does not depend on evaluation order
(``benchmarks/test_query_throughput.py`` enforces both the equality
and a >= 3x throughput floor).

The kernel consumes v2 :class:`~repro.core.flatstore.FlatLabelStore`
and v3 :class:`~repro.core.quantized.QuantizedLabelStore` arrays alike
(quantized distances upcast to float64 exactly during the hit
gathers), and a :class:`~repro.oracle.sharding.ShardedLabelStore`
batch is bucketed by (source shard, target shard) and evaluated per
bucket with the same machinery — pivot ids are global, so only the
key base changes.

numpy is optional everywhere else in the query stack; this module
degrades to ``available() == False`` without it and
:func:`repro.oracle.batch.evaluate_batch` falls back to the scalar
path.
"""

from __future__ import annotations

from typing import Sequence

try:  # numpy is an optional dependency of the serving stack
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None

from repro.core.flatstore import FlatLabelStore

_DTYPES = {
    "b": "int8", "B": "uint8", "h": "int16", "H": "uint16",
    "i": "int32", "I": "uint32", "l": "int64", "L": "uint64",
    "q": "int64", "Q": "uint64", "f": "float32", "d": "float64",
}

#: Elements in the dense join's scatter table (~6 MB of f64+i32) —
#: sized to stay cache-resident; a DRAM-sized table loses to the
#: binary search.  Rows per block is this divided by the key base;
#: below _MIN_DENSE_BLOCK rows per block (or when the batch is too
#: small to amortise scattering the source side) the searchsorted
#: join takes over.
_DENSE_TABLE_ELEMS = 1 << 19
_MIN_DENSE_BLOCK = 8


def available() -> bool:
    """Whether the kernel can run at all (numpy importable)."""
    return np is not None


def supports(store) -> bool:
    """Whether ``store`` exposes arrays the kernel can consume.

    True for the CSR-backed stores — :class:`FlatLabelStore`, its
    quantized v3 subclass, and a
    :class:`~repro.oracle.sharding.ShardedLabelStore` over them —
    when numpy is importable.  Tuple-list indexes have no arrays to
    vectorize over.
    """
    if np is None:
        return False
    if isinstance(store, FlatLabelStore):
        return True
    from repro.oracle.sharding import ShardedLabelStore

    if isinstance(store, ShardedLabelStore):
        return all(isinstance(s, FlatLabelStore) for s in store.shards)
    return False


class _Side:
    """Packed numpy view of one label side, keyed for the merge join.

    ``keys[j] = owner(j) * base + pivot(j)`` for the j-th entry of the
    side's entry arrays — int32 whenever the packed range fits (half
    the cache footprint of int64).  ``dists`` stays a zero-copy view
    of the store's (possibly quantized, possibly memory-mapped)
    distance array.
    """

    __slots__ = ("offsets", "dists", "keys", "base")

    def __init__(self, offsets, dists, keys, base: int) -> None:
        self.offsets = offsets
        self.dists = dists
        self.keys = keys
        self.base = base


def _as_np(buf):
    """Zero-copy numpy view of an ``array.array`` or typed memoryview."""
    code = getattr(buf, "typecode", None) or buf.format
    return np.frombuffer(buf, dtype=np.dtype(_DTYPES[code]))


def _build_side(offsets_buf, pivots_buf, dists_buf, delta: bool, base: int):
    """Pack one side's CSR buffers into a keyed :class:`_Side` view.

    ``delta=True`` decodes v3 per-label pivot deltas to absolute ids
    vectorized (one cumsum + one repeat), so quantized stores feed the
    same join paths without a scalar decode pass.
    """
    offsets = _as_np(offsets_buf).astype(np.int64, copy=False)
    lens = np.diff(offsets)
    piv = _as_np(pivots_buf)
    if delta:
        # v3 stores per-label pivot deltas; absolute[j] is the running
        # sum within j's label: global cumsum minus each label's base.
        run = np.cumsum(piv.astype(np.int64, copy=False))
        seg0 = offsets[:-1]
        label_base = np.where(seg0 > 0, run[seg0 - 1], 0)
        piv = run - np.repeat(label_base, lens)
    n_local = lens.size
    kdt = (
        np.int32
        if n_local * base <= np.iinfo(np.int32).max
        else np.int64
    )
    keys = np.repeat(np.arange(n_local, dtype=kdt) * base, lens)
    keys += piv.astype(kdt, copy=False)
    return _Side(offsets, _as_np(dists_buf), keys, base)


def _sides(store: FlatLabelStore, base: int) -> tuple[_Side, _Side]:
    """The (out, in) packed views of a flat store, cached on the store.

    ``base`` must exceed every pivot id — the store's own vertex count
    for a standalone store, the *global* vertex count when the store
    serves as one shard (pivot ids are global inside shards).
    """
    cached = store._np
    if cached is not None and cached[0] == base:
        return cached[1], cached[2]
    from repro.core.quantized import QuantizedLabelStore

    src = store
    if store.has_pending_updates:
        # Fold staged updates into fresh arrays once; apply_updates
        # drops this cache, so the fold cost is paid per update batch,
        # not per query batch.  The merged arrays stay alive through
        # the cache tuple's _Side views.
        src = store.merged()
    delta = isinstance(src, QuantizedLabelStore)
    out = _build_side(
        src.out_offsets, src.out_pivots, src.out_dists, delta, base
    )
    if src.directed:
        inn = _build_side(
            src.in_offsets, src.in_pivots, src.in_dists, delta, base
        )
    else:
        inn = out
    store._np = (base, out, inn)
    return out, inn


def ensure_sides(store) -> None:
    """Build (and cache) the packed key views for ``store`` now.

    Serving frontends call this before forking worker processes: the
    views land on the store (``store._np``) in pages the children then
    inherit copy-on-write, so every worker joins against one physical
    copy of the label arrays instead of rebuilding its own (see
    :mod:`repro.serve.shm`).  A sharded store warms every shard with
    the global key base.  No-op when :func:`supports` is false.
    """
    if not supports(store):
        return
    from repro.oracle.sharding import ShardedLabelStore

    if isinstance(store, ShardedLabelStore):
        for shard in store.shards:
            _sides(shard, store.n)
    else:
        _sides(store, store.n)


def _expand(side: _Side, T):
    """Gather the target vertices' label slices from ``side``.

    Returns ``(idx, lens, seg0)``: each gathered entry's position in
    the side's arrays, per-target slice lengths, and each slice's
    start in the gathered order.
    """
    starts = side.offsets[T]
    lens = side.offsets[T + 1] - starts
    total = int(lens.sum())
    seg0 = np.cumsum(lens) - lens
    # int32 indices halve the memory traffic whenever the side's
    # arrays are small enough to address with them.
    idt = np.int32 if int(side.offsets[-1]) <= 0x7FFFFFFF else np.int64
    idx = np.arange(total, dtype=idt) + np.repeat(
        (starts - seg0).astype(idt, copy=False), lens
    )
    return idx, lens, seg0


def _eval(out_side: _Side, in_side: _Side, S, T, orient: bool):
    """Distances for pairs ``(S[k], T[k])`` (local ids, no s==t pairs).

    ``orient=True`` (undirected single stores) flips pairs so the
    smaller label is the expanded one — valid because the two sides
    alias and ``dist`` is symmetric; the scalar dict probe plays the
    same trick, and both orientations form the identical set of
    ``d1 + d2`` sums.
    """
    base = out_side.base
    if orient:
        off = out_side.offsets
        flip = (off[T + 1] - off[T]) > (off[S + 1] - off[S])
        S, T = np.where(flip, T, S), np.where(flip, S, T)
    order = np.argsort(S)
    S = S[order]
    T = T[order]

    idx, lens, seg0 = _expand(in_side, T)
    # The shifted keys land in the *source* side's key space, so the
    # dtype must hold both sides' ranges (cross-shard joins can pair
    # an int32-keyed shard with an int64-keyed one).
    kdt = np.promote_types(out_side.keys.dtype, in_side.keys.dtype)
    t_keys = in_side.keys[idx].astype(kdt, copy=False) + np.repeat(
        ((S - T) * base).astype(kdt, copy=False), lens
    )

    res = np.full(len(T), np.inf)
    if t_keys.size and out_side.keys.size:
        block = _DENSE_TABLE_ELEMS // max(base, 1)
        # The dense join scatters every source-side entry once; worth
        # it only when the gathered target side is of comparable size.
        if (
            block >= _MIN_DENSE_BLOCK
            and kdt == np.int32
            and t_keys.size * 2 >= out_side.keys.size
        ):
            sums = _join_dense(
                out_side, in_side, S, t_keys, idx, seg0, block
            )
        else:
            sums = _join_sorted(out_side, in_side, t_keys, idx)
        nonempty = lens > 0
        res[nonempty] = np.minimum.reduceat(sums, seg0[nonempty])
    out = np.full(len(T), np.inf)
    out[order] = res
    return out


def _join_dense(out_side: _Side, in_side: _Side, S, t_keys, idx, seg0, block):
    """O(1)-probe join: scatter source entries, gather target entries.

    Walks the source vertex range ``block`` vertices at a time: each
    block's label entries (a contiguous run of the side's arrays) are
    scattered into a flat ``block * base`` table holding the entry
    distances, with a parallel epoch array marking which block wrote a
    cell — stale cells read as "no common pivot" without ever clearing
    the table.  Every gathered target entry then costs two gathers
    instead of a binary search.  Blocks none of the batch's sources
    fall in are skipped entirely.
    """
    base = out_side.base
    off = out_side.offsets
    n_local = off.size - 1
    total = t_keys.size
    src_dists = out_side.dists
    tgt_dists = in_side.dists
    table_d = np.empty(block * base, dtype=np.float64)
    table_e = np.zeros(block * base, dtype=np.int32)
    sums = np.empty(total, dtype=np.float64)
    vedges = np.arange(0, n_local + block, block, dtype=np.int64)
    # Element range of each vertex block in the gathered target order:
    # pairs are sorted by source, so each block's pairs — and with
    # them their gathered entries — form one contiguous run.
    pair_cuts = np.searchsorted(S, vedges)
    elem_starts = np.append(seg0, total)
    for k in range(vedges.size - 1):
        e0 = int(elem_starts[pair_cuts[k]])
        e1 = int(elem_starts[pair_cuts[k + 1]])
        if e0 == e1:
            continue
        b = int(vedges[k])
        shift = np.int32(b * base)
        so, se = int(off[b]), int(off[min(b + block, n_local)])
        epoch = k + 1
        addr = out_side.keys[so:se] - shift
        table_d[addr] = src_dists[so:se]
        table_e[addr] = epoch
        taddr = t_keys[e0:e1] - shift
        hit = np.flatnonzero(table_e[taddr] == epoch)
        sub = sums[e0:e1]
        sub.fill(np.inf)
        # Distances come straight from the stores' arrays for matched
        # entries only (quantized values upcast to float64 exactly).
        sub[hit] = np.add(
            table_d[taddr[hit]],
            tgt_dists[idx[e0:e1][hit]].astype(np.float64, copy=False),
        )
    return sums


def _join_sorted(out_side: _Side, in_side: _Side, t_keys, idx):
    """Merge join via one global searchsorted into the side's keys."""
    s_keys = out_side.keys
    pos = np.searchsorted(s_keys, t_keys)
    np.minimum(pos, s_keys.size - 1, out=pos)
    hit = np.flatnonzero(s_keys[pos] == t_keys)
    sums = np.full(t_keys.size, np.inf)
    # Distances are fetched for matched entries only, straight from
    # the stores' arrays (quantized values upcast to float64 exactly).
    sums[hit] = np.add(
        out_side.dists[pos[hit]].astype(np.float64, copy=False),
        in_side.dists[idx[hit]].astype(np.float64, copy=False),
    )
    return sums


def _eval_sharded(store, S, T):
    """Bucket global pairs by (source shard, target shard) and evaluate."""
    los = np.asarray(store._los, dtype=np.int64)
    sa = np.searchsorted(los, S, side="right") - 1
    sb = np.searchsorted(los, T, side="right") - 1
    res = np.empty(len(S), dtype=np.float64)
    num = store.num_shards
    for key in np.unique(sa * num + sb):
        a, b = int(key) // num, int(key) % num
        mask = (sa == a) & (sb == b)
        out_side, _ = _sides(store.shards[a], store.n)
        _, in_side = _sides(store.shards[b], store.n)
        res[mask] = _eval(
            out_side, in_side, S[mask] - los[a], T[mask] - los[b],
            orient=False,
        )
    return res


def batch_eval_arrays(store, S, T):
    """Array-in/array-out evaluation (the parallel workers' entry).

    The pair columns arrive as int64 numpy arrays and the distances
    return as one float64 array — the
    :class:`~repro.oracle.parallel.ParallelOracle` ships chunks across
    the process boundary in this form because numpy buffers pickle in
    one memcpy, where a list of tuples costs a per-element walk.
    """
    n = store.n
    bad = (S < 0) | (S >= n) | (T < 0) | (T >= n)
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise IndexError(
            f"query ({int(S[k])}, {int(T[k])}) out of range [0, {n})"
        )
    res = np.zeros(len(S), dtype=np.float64)
    ne = S != T
    if ne.any():
        from repro.oracle.sharding import ShardedLabelStore

        if isinstance(store, ShardedLabelStore):
            res[ne] = _eval_sharded(store, S[ne], T[ne])
        else:
            out_side, in_side = _sides(store, n)
            res[ne] = _eval(
                out_side, in_side, S[ne], T[ne],
                orient=not store.directed,
            )
    return res


def batch_eval(
    store, pairs: Sequence[tuple[int, int]]
) -> list[float]:
    """Distances for every pair, in order — the kernel entry point.

    ``store`` must satisfy :func:`supports`.  Bit-identical to calling
    ``store.query`` per pair (``inf`` for unreachable, ``0.0`` for
    ``s == t``); raises ``IndexError`` on out-of-range vertices like
    the scalar paths do.
    """
    if not pairs:
        return []
    sq = np.asarray(pairs, dtype=np.int64)
    return batch_eval_arrays(store, sq[:, 0], sq[:, 1]).tolist()
