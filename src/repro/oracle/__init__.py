"""repro.oracle — the batched distance-query serving layer.

The :class:`DistanceOracle` facade is the single entry point for
answering queries over a built index: it attaches to any
:class:`~repro.core.labels.LabelStore` backend (tuple-list or flat
CSR), serves single-pair and batched point-to-point distances through
an LRU result cache, and exposes reachability, path reconstruction,
one-to-all, and k-NN on top.

For indexes too big (or traffic too heavy) for one process, the store
can be range-partitioned into a shard directory and served by a worker
pool instead (:mod:`repro.oracle.sharding` /
:mod:`repro.oracle.parallel`); fanned-out batches default to the
shared-memory transport of :mod:`repro.serve.shm`, and the asyncio
request frontend lives one layer up in :mod:`repro.serve`.

Quick start::

    from repro.oracle import DistanceOracle, ParallelOracle

    oracle = DistanceOracle.open("g.index")        # any format version
    oracle.query(3, 4021)                          # exact distance
    oracle.query_batch([(0, 9), (3, 4021), ...])   # grouped evaluation
    oracle.nearest(3, k=10)                        # k-NN

    served = ParallelOracle("g.shards", workers=4)  # `repro shard` output
    served.query_batch(pairs)                       # fanned over the pool
"""

from repro.oracle.batch import KERNEL_MODES, evaluate_batch, read_pair_file
from repro.oracle.cache import CacheInfo, LRUCache
from repro.oracle.oracle import DEFAULT_CACHE_SIZE, DistanceOracle
from repro.oracle.parallel import (
    DEFAULT_INLINE_ENTRIES,
    DEFAULT_MIN_PARALLEL_BATCH,
    ROUTE_MODES,
    TRANSPORT_MODES,
    ParallelOracle,
)
from repro.oracle.sharding import (
    ShardedLabelStore,
    ShardError,
    load_balanced_ranges,
    load_manifest,
    split_ranges,
)

__all__ = [
    "DistanceOracle",
    "ParallelOracle",
    "ShardedLabelStore",
    "ShardError",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_INLINE_ENTRIES",
    "DEFAULT_MIN_PARALLEL_BATCH",
    "KERNEL_MODES",
    "ROUTE_MODES",
    "TRANSPORT_MODES",
    "LRUCache",
    "CacheInfo",
    "evaluate_batch",
    "load_balanced_ranges",
    "load_manifest",
    "read_pair_file",
    "split_ranges",
]
