"""repro.oracle — the batched distance-query serving layer.

The :class:`DistanceOracle` facade is the single entry point for
answering queries over a built index: it attaches to any
:class:`~repro.core.labels.LabelStore` backend (tuple-list or flat
CSR), serves single-pair and batched point-to-point distances through
an LRU result cache, and exposes reachability, path reconstruction,
one-to-all, and k-NN on top.

Quick start::

    from repro.oracle import DistanceOracle

    oracle = DistanceOracle.open("g.index")        # any format version
    oracle.query(3, 4021)                          # exact distance
    oracle.query_batch([(0, 9), (3, 4021), ...])   # grouped evaluation
    oracle.nearest(3, k=10)                        # k-NN
"""

from repro.oracle.batch import evaluate_batch, read_pair_file
from repro.oracle.cache import CacheInfo, LRUCache
from repro.oracle.oracle import DEFAULT_CACHE_SIZE, DistanceOracle

__all__ = [
    "DistanceOracle",
    "DEFAULT_CACHE_SIZE",
    "LRUCache",
    "CacheInfo",
    "evaluate_batch",
    "read_pair_file",
]
