"""Batched evaluation of distance queries over a label store.

A batch of ``(s, t)`` pairs is answered in three steps:

1. **dedupe** — identical pairs (after orientation normalisation on
   undirected stores, where ``dist(s, t) == dist(t, s)``) are
   evaluated once and fanned back out to every position;
2. **cache probe** — pairs already in the shared LRU are answered
   without touching the store;
3. **evaluation** — the remaining pairs go through the vectorized
   numpy kernel (:mod:`repro.oracle.kernel`) when the store exposes
   CSR arrays and numpy is importable, or otherwise through grouped
   merge joins: pairs are grouped by source vertex so a store that
   implements ``query_group`` (the CSR backend) builds each source's
   pivot dict once and probes every target through it; stores without
   the hook fall back to per-pair ``query``.

Results are bit-identical to calling ``store.query`` per pair
whichever path runs: every path computes the same minimum over the
same float64 sums, and the cache only ever stores values produced by
one of them.  The ``kernel`` knob ("auto"/"on"/"off") exists so
benchmarks can pin a path; "auto" is right everywhere else.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.labels import LabelStore
from repro.oracle.cache import LRUCache

_MISS = object()

#: Accepted values of the ``kernel`` knob.
KERNEL_MODES = ("auto", "on", "off")

#: Below this many unique pairs "auto" stays on the scalar path — the
#: kernel's fixed per-call cost (array setup, np.unique) is larger
#: than a handful of dict probes.  Purely a perf cutoff: both paths
#: return bit-identical distances.
MIN_KERNEL_PAIRS = 8


def _use_kernel(store: LabelStore, kernel: str, num_pairs: int) -> bool:
    """Resolve the ``kernel`` knob for this store and batch."""
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
        )
    if kernel == "off":
        return False
    from repro.oracle import kernel as _kernel

    if kernel == "on":
        if not _kernel.supports(store):
            raise ValueError(
                "kernel='on' but this store has no vectorized path "
                "(numpy missing, or a tuple-list backend)"
            )
        return True
    return num_pairs >= MIN_KERNEL_PAIRS and _kernel.supports(store)


def pair_key(store: LabelStore, s: int, t: int) -> tuple[int, int]:
    """Canonical cache/dedupe key for a pair on this store.

    Undirected stores answer ``(s, t)`` and ``(t, s)`` identically, so
    both orientations share one key.
    """
    if not store.directed and s > t:
        return t, s
    return s, t


def evaluate_batch(
    store: LabelStore,
    pairs: Iterable[tuple[int, int]],
    cache: LRUCache | None = None,
    kernel: str = "auto",
) -> list[float]:
    """Distances for every pair, in input order."""
    pairs = list(pairs)
    if cache is None and _use_kernel(store, kernel, len(pairs)):
        # No cache to probe or fill: hand the raw batch straight to
        # the kernel, skipping the per-pair Python dedupe loop.  The
        # kernel groups by source itself, and duplicate pairs just
        # recompute the same float64 minimum — answers are identical.
        from repro.oracle import kernel as _kernel

        return _kernel.batch_eval(store, pairs)
    results: list[float] = [0.0] * len(pairs)
    # key -> positions in `pairs` still awaiting a distance.  The
    # cache is probed once per *unique* key so repeated pairs in one
    # batch count as a single miss, not one per occurrence.
    pending: dict[tuple[int, int], list[int]] = {}
    for pos, (s, t) in enumerate(pairs):
        key = pair_key(store, s, t)
        positions = pending.get(key)
        if positions is not None:
            positions.append(pos)
            continue
        if cache is not None:
            hit = cache.get(key, _MISS)
            if hit is not _MISS:
                results[pos] = hit
                continue
        pending[key] = [pos]

    if not pending:
        return results

    if _use_kernel(store, kernel, len(pending)):
        from repro.oracle import kernel as _kernel

        keys = list(pending)
        for key, d in zip(keys, _kernel.batch_eval(store, keys)):
            if cache is not None:
                cache.put(key, d)
            for pos in pending[key]:
                results[pos] = d
        return results

    by_source: dict[int, list[int]] = {}
    for s, t in pending:
        by_source.setdefault(s, []).append(t)

    query_group = getattr(store, "query_group", None)
    for s, targets in by_source.items():
        if query_group is not None:
            distances = query_group(s, targets)
        else:
            distances = [store.query(s, t) for t in targets]
        for t, d in zip(targets, distances):
            key = pair_key(store, s, t)
            if cache is not None:
                cache.put(key, d)
            for pos in pending[key]:
                results[pos] = d
    return results


def read_pair_file(path) -> list[tuple[int, int]]:
    """Parse a batch workload file: one ``s t`` pair per line.

    Blank lines and ``#``/``%`` comments (whole-line or inline) are
    skipped, and ``.gz`` paths are decompressed transparently, so
    workload files mix freely with edge-list tooling.  Raises
    ``ValueError`` on malformed lines.
    """
    from repro.graphs.io import _open_text

    out: list[tuple[int, int]] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            body = line.split("#", 1)[0].split("%", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 's t', got {line.strip()!r}"
                )
            try:
                out.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: expected 's t', got {line.strip()!r}"
                ) from exc
    return out
