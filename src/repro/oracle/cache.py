"""A small LRU cache for query results, with hit/miss accounting.

``functools.lru_cache`` memoises a function, but the oracle needs to
share one cache between the single-pair and batch paths, key it on
normalised pairs, and expose occupancy for monitoring — so this is an
explicit ``OrderedDict``-based implementation instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

_SENTINEL = object()


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time cache statistics."""

    hits: int
    misses: int
    capacity: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    A capacity of 0 disables the cache entirely (every ``get`` is a
    recorded miss and ``put`` is a no-op), which lets callers keep one
    unconditional code path.
    """

    __slots__ = ("capacity", "_data", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default=None):
        """Look up ``key``, refreshing its recency on a hit."""
        value = self._data.get(key, _SENTINEL)
        if value is _SENTINEL:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert ``key``, evicting the least recently used if full."""
        if self.capacity == 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.capacity:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def info(self) -> CacheInfo:
        """Current statistics snapshot."""
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            capacity=self.capacity,
            size=len(self._data),
        )
