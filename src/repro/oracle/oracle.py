"""The :class:`DistanceOracle` serving facade.

Everything that *answers* queries in this codebase — the CLI, the
examples, the bench harness — goes through one object that owns a
label store backend and layers the serving conveniences on top:

* pluggable storage: any :class:`~repro.core.labels.LabelStore`
  (tuple-list :class:`~repro.core.labels.LabelIndex` or CSR
  :class:`~repro.core.flatstore.FlatLabelStore`), attached directly or
  opened from an index file of any format version;
* an LRU result cache shared by the single-pair and batch paths;
* batched merge-join evaluation (:meth:`query_batch`) that dedupes
  pairs and groups them by source vertex;
* the derived workloads: reachability, shortest-path reconstruction
  (needs a graph attached), one-to-all distances, and k-nearest
  neighbours via a lazily built inverted index.

This is the seam later scaling work (sharding, async serving,
multi-backend routing) plugs into: an oracle is one shard's worth of
serving state.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.knn import InvertedLabelIndex
from repro.core.labels import INF, LabelStore
from repro.core.query import reconstruct_path
from repro.graphs.digraph import Graph
from repro.oracle.batch import evaluate_batch, pair_key
from repro.oracle.cache import CacheInfo, LRUCache

#: Default LRU capacity — roughly 64k cached pairs, a few MB of
#: Python objects, sized for a hot working set of repeated queries.
DEFAULT_CACHE_SIZE = 65_536


class DistanceOracle:
    """Point-to-point distance serving over a pluggable label store."""

    def __init__(
        self,
        store: LabelStore,
        graph: Graph | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        kernel: str = "auto",
    ) -> None:
        self.store = store
        self.graph = graph
        self.cache = LRUCache(cache_size)
        self.kernel = kernel
        self._inverted: InvertedLabelIndex | None = None

    # -- construction --------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str | Path,
        backend: str = "flat",
        use_mmap: bool = False,
        graph: Graph | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        kernel: str = "auto",
    ) -> "DistanceOracle":
        """Open an index file (any format version) and serve it.

        ``backend`` selects the in-memory representation: ``"flat"``
        (default) keeps the file's array layout — CSR for v2,
        compact quantized for v3 — for the fast query paths;
        ``"list"`` keeps/expands tuple lists.  ``use_mmap`` maps a
        v2/v3 file zero-copy instead of reading it.  ``kernel``
        ("auto"/"on"/"off") pins the batched numpy evaluation.
        """
        from repro.core.flatstore import FlatLabelStore, load_store

        if backend == "flat":
            store: LabelStore = load_store(
                path, prefer_flat=True, use_mmap=use_mmap
            )
        elif backend == "list":
            # Tuple lists are materialized in memory regardless, so
            # never create a file mapping that would only leak.
            store = load_store(path, prefer_flat=False, use_mmap=False)
            if isinstance(store, FlatLabelStore):
                store = store.to_index()
        else:
            raise ValueError(f"unknown backend {backend!r}")
        return cls(store, graph=graph, cache_size=cache_size, kernel=kernel)

    # -- basic facts ---------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices served."""
        return self.store.n

    @property
    def directed(self) -> bool:
        return self.store.directed

    # -- point-to-point ------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; ``inf`` when unreachable."""
        if self.cache.capacity == 0:
            # Caching disabled: skip key building and LRU bookkeeping
            # so timed paths pay only the real merge-join cost.
            return self.store.query(s, t)
        key = pair_key(self.store, s, t)
        hit = self.cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        d = self.store.query(s, t)
        self.cache.put(key, d)
        return d

    def query_batch(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        """Distances for every pair, in input order.

        Dedupes repeated pairs, serves cache hits, and evaluates the
        rest with the vectorized kernel or grouped merge joins (see
        :mod:`repro.oracle.batch`).  Bit-identical to calling
        :meth:`query` per pair.
        """
        cache = self.cache if self.cache.capacity > 0 else None
        return evaluate_batch(
            self.store, pairs, cache=cache, kernel=self.kernel
        )

    def query_via(self, s: int, t: int) -> tuple[float, int]:
        """``(dist, best_pivot)`` — the pivot certifying the distance."""
        return self.store.query_via(s, t)

    def is_reachable(self, s: int, t: int) -> bool:
        """Whether any path ``s -> t`` exists."""
        return self.query(s, t) != INF

    # -- paths ---------------------------------------------------------------
    def attach_graph(self, graph: Graph) -> None:
        """Provide the graph needed by :meth:`reconstruct_path`."""
        self.graph = graph

    def reconstruct_path(self, s: int, t: int) -> list[int] | None:
        """One shortest path ``s -> t``; ``None`` when unreachable.

        The labels store distances only, so this greedily descends
        through the attached graph (raises ``ValueError`` when no
        graph was attached).
        """
        if self.graph is None:
            raise ValueError(
                "path reconstruction needs the graph; pass graph= at "
                "construction or call attach_graph()"
            )
        return reconstruct_path(self.store, self.graph, s, t)

    # -- one-to-many ---------------------------------------------------------
    def _inverted_index(self) -> InvertedLabelIndex:
        if self._inverted is None:
            self._inverted = InvertedLabelIndex(self.store)
        return self._inverted

    def nearest(
        self, s: int, k: int, include_self: bool = False
    ) -> list[tuple[float, int]]:
        """The ``k`` closest vertices to ``s`` as ``(dist, vertex)``.

        The first call builds an inverted label index (size comparable
        to the labels themselves); subsequent calls reuse it.
        """
        return self._inverted_index().nearest(s, k, include_self=include_self)

    def distances_from(self, s: int) -> list[float]:
        """Distances from ``s`` to every vertex."""
        return self._inverted_index().distances_from(s)

    def distances_to(self, t: int) -> list[float]:
        """Distances from every vertex to ``t``."""
        return self._inverted_index().distances_to(t)

    # -- mutation ------------------------------------------------------------
    def apply_updates(self, delta) -> int | list[int]:
        """Apply a :class:`~repro.core.labels.LabelDelta` to the store.

        Forwards to the backend's ``apply_updates`` (flat / quantized
        stores stage a query-time overlay; sharded stores route the
        delta to the owning shards) and then invalidates every derived
        result — the LRU cache and the inverted k-NN index — so a
        stale distance can never be served after an update.  Returns
        whatever the store returns (staged slice count, or affected
        shard ids).
        """
        apply = getattr(self.store, "apply_updates", None)
        if apply is None:
            raise TypeError(
                f"{type(self.store).__name__} does not support incremental "
                "updates; serve a flat, quantized, or sharded store"
            )
        result = apply(delta)
        self.invalidate()
        return result

    def invalidate(self) -> None:
        """Drop every result derived from the store's current labels.

        The LRU result cache and the lazily built inverted k-NN index
        both memoize label contents, so **every** store-mutating
        surface must call this; :meth:`apply_updates` does it
        automatically, and callers that mutate the store directly
        (swapping arrays, reloading files) must do it themselves.
        """
        self.cache.clear()
        self._inverted = None

    # -- monitoring ----------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the result cache."""
        return self.cache.info()

    def clear_cache(self) -> None:
        """Drop all derived state (e.g. after swapping the store):
        the result cache and the lazily built inverted k-NN index."""
        self.invalidate()

    def close(self) -> None:
        """Release backend resources (the file mapping of an
        mmap-loaded store); the oracle must not be queried after."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        info = self.cache.info()
        return (
            f"DistanceOracle({self.store!r}, cache={info.size}/"
            f"{info.capacity})"
        )


_MISS = object()
