"""Range-sharded label storage: N per-shard flat stores + a manifest.

A single :class:`~repro.core.flatstore.FlatLabelStore` stops being the
right serving unit once the index outgrows one process (the paper's
billion-edge targets) or once query traffic wants more than one core.
This module partitions a flat store by **contiguous vertex range** into
``N`` independent shard files and serves them back through one object:

* :class:`ShardedLabelStore` — implements the full
  :class:`~repro.core.labels.LabelStore` protocol over the shard set,
  so the :class:`~repro.oracle.DistanceOracle` facade, k-NN, path
  reconstruction, and the verifier all work unchanged.  A query
  ``(s, t)`` reads ``Lout(s)`` from the shard owning ``s`` and
  ``Lin(t)`` from the shard owning ``t``; pivot ids are global, so the
  dict-probe evaluation is identical to the single-store one and
  returns bit-identical distances.
* **On-disk layout** — a directory holding one label file per shard
  (binary format v2 ``FlatLabelStore`` blobs, or compact quantized v3
  files via ``save(format="v3")``, each self-contained over its local
  vertex range) plus ``manifest.json`` recording the global shape,
  the ``[lo, hi)`` range and SHA-256 checksum of every shard.  Loads
  validate the manifest (complete range cover, no overlaps or gaps,
  files present, checksums match) before any shard is opened, and can
  memory-map every shard for zero-copy serving.

Because each shard is an ordinary index file, one shard's worth of state
is exactly what a :class:`~repro.oracle.parallel.ParallelOracle`
worker process maps — sharding here is the storage half of the
parallel serving frontend.
"""

from __future__ import annotations

import hashlib
import json
import re
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import Sequence

from repro.core.flatstore import (
    FlatLabelStore,
    load_store,
    merge_min_via,
    probe_min_distance,
    probe_slice_min,
)
from repro.core.quantized import QuantizedLabelStore
from repro.core.labels import (
    BYTES_PER_ENTRY,
    LabelIndex,
    LabelStats,
    LabelStore,
)
from repro.utils.atomicio import atomic_binary_writer

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "manifest.json"

#: Shard file naming scheme per on-disk label format
#: (``shard-0000.idx2`` for v2 files, ``shard-0000.idx3`` for v3).
SHARD_FILE_FORMATS = {
    "v2": "shard-{:04d}.idx2",
    "v3": "shard-{:04d}.idx3",
}
SHARD_FILE_FORMAT = SHARD_FILE_FORMATS["v2"]
# Reconcile writes revision-suffixed generations (shard-0007-r3.idx2)
# next to the canonical save() names; both shapes count as shard files
# for stale-cleanup sweeps.
_SHARD_FILE_RE = re.compile(r"^shard-\d{4}(-r\d+)?\.idx[23]$")
_SHARD_GEN_RE = re.compile(r"^shard-(\d{4})(?:-r(\d+))?\.(idx[23])$")


def _next_shard_file(name: str) -> str:
    """The next revision of a shard file name (format suffix kept)."""
    match = _SHARD_GEN_RE.match(name)
    if match is None:
        raise ShardError(f"unrecognized shard file name {name!r}")
    rev = int(match.group(2) or 0) + 1
    return f"shard-{match.group(1)}-r{rev}.{match.group(3)}"

_MANIFEST_FORMAT = "repro-shards"
_MANIFEST_VERSION = 1


class ShardError(ValueError):
    """A shard directory, manifest, or shard file is invalid."""


def split_ranges(n: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[lo, hi)`` vertex ranges covering ``n``.

    The first ``n % num_shards`` shards get one extra vertex, so sizes
    differ by at most one.  Raises :class:`ShardError` unless
    ``1 <= num_shards <= n``.
    """
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > n:
        raise ShardError(
            f"cannot split {n} vertices into {num_shards} non-empty shards"
        )
    base, extra = divmod(n, num_shards)
    ranges = []
    lo = 0
    for i in range(num_shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def load_balanced_ranges(
    ranges: Sequence[tuple[int, int]],
    loads: Sequence[float],
    num_shards: int,
) -> list[tuple[int, int]]:
    """Shard boundaries that split observed query load evenly.

    ``loads[i]`` is the query mass observed against ``ranges[i]`` —
    e.g. the per-shard hit counts a
    :class:`repro.serve.shm.SharedMemoryFanout` records while serving.
    Load inside a range is modelled as uniform over its vertices
    (finer attribution would need per-vertex counters); the cumulative
    load curve is then piecewise linear, and the returned ranges cut
    it into ``num_shards`` equal-mass slices.  A hot range therefore
    shrinks (its vertices spread over more shards) and cold ranges
    coalesce.  Every returned range is non-empty, the cover is exact,
    and an all-zero load vector degrades to :func:`split_ranges`.
    """
    ranges = [(int(lo), int(hi)) for lo, hi in ranges]
    _validate_ranges(ranges)
    n = ranges[-1][1]
    if not 1 <= num_shards <= n:
        raise ShardError(
            f"cannot split {n} vertices into {num_shards} non-empty shards"
        )
    if len(loads) != len(ranges):
        raise ShardError(
            f"got {len(loads)} load counters for {len(ranges)} ranges"
        )
    if any(load < 0 for load in loads):
        raise ShardError("load counters must be non-negative")
    total = float(sum(loads))
    if total <= 0:
        return split_ranges(n, num_shards)
    cum = [0.0]
    for load in loads:
        cum.append(cum[-1] + float(load))
    bounds = [0]
    for k in range(1, num_shards):
        target = total * k / num_shards
        i = min(bisect_right(cum, target) - 1, len(ranges) - 1)
        lo, hi = ranges[i]
        seg = cum[i + 1] - cum[i]
        frac = (target - cum[i]) / seg if seg > 0 else 0.0
        cut = round(lo + frac * (hi - lo))
        # Clamp so every shard (this one and the ones still to come)
        # keeps at least one vertex.
        cut = max(cut, bounds[-1] + 1)
        cut = min(cut, n - (num_shards - k))
        bounds.append(cut)
    bounds.append(n)
    return list(zip(bounds, bounds[1:]))


def _sha256_file(path: Path) -> str:
    """Streamed SHA-256 of a file.

    On the save path this re-reads bytes just written (page-cache
    warm); folding hashing into the writers isn't worth the coupling.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ShardedLabelStore:
    """A :class:`LabelStore` over per-range :class:`FlatLabelStore` shards.

    ``ranges[i] = (lo, hi)`` and ``shards[i]`` holds the labels of
    vertices ``lo .. hi-1``, locally re-based (global vertex ``v``
    lives at local id ``v - lo`` in its shard).  Pivot ids inside the
    labels stay **global**, so cross-shard joins need no translation.
    """

    __slots__ = ("n", "directed", "shards", "ranges", "rank", "_los", "_dirty")

    def __init__(
        self,
        shards: Sequence[FlatLabelStore],
        ranges: Sequence[tuple[int, int]],
    ) -> None:
        if len(shards) != len(ranges) or not shards:
            raise ShardError(
                f"got {len(shards)} shards for {len(ranges)} ranges"
            )
        self.shards = list(shards)
        self.ranges = [(int(lo), int(hi)) for lo, hi in ranges]
        _validate_ranges(self.ranges)
        self.n = self.ranges[-1][1]
        self.directed = shards[0].directed
        for (lo, hi), shard in zip(self.ranges, self.shards):
            if shard.n != hi - lo:
                raise ShardError(
                    f"shard for range [{lo}, {hi}) has {shard.n} vertices, "
                    f"expected {hi - lo}"
                )
            if shard.directed != self.directed:
                raise ShardError("shards disagree on directedness")
        self._los = [lo for lo, _ in self.ranges]
        self._dirty: set[int] = set()
        # Reassemble the global ranking when every shard carries its slice.
        if all(s.rank is not None for s in self.shards):
            rank: list[int] | None = []
            for shard in self.shards:
                rank.extend(shard.rank)
        else:
            rank = None
        self.rank = rank

    # -- construction --------------------------------------------------------
    @classmethod
    def split(
        cls,
        store: LabelStore,
        num_shards: int | None = None,
        ranges: Sequence[tuple[int, int]] | None = None,
    ) -> "ShardedLabelStore":
        """Partition any label store into contiguous range shards.

        ``num_shards`` splits the vertex range into near-equal pieces;
        ``ranges`` instead pins explicit ``[lo, hi)`` boundaries (a
        gap/overlap-free cover of ``[0, n)``) — the load-adaptive
        rebalance path computes them with :func:`load_balanced_ranges`
        and re-splits here.  Exactly one of the two must drive the
        boundaries (passing both is accepted when they agree on the
        shard count).

        Tuple-list indexes are packed through
        :meth:`FlatLabelStore.from_index` first, quantized v3 stores
        are expanded to the v2 layout (the sliced shards can be
        re-quantized at save time), and any other backend (including
        an already-sharded store being re-split to new boundaries)
        goes through its ``out_label``/``in_label`` accessors; the CSR
        arrays are then sliced per range (offsets re-based to each
        shard's start), which preserves entry order and therefore
        answers.
        """
        if isinstance(store, QuantizedLabelStore):
            store = store.to_flat()
        elif isinstance(store, FlatLabelStore):
            # Fold any staged updates first: the range slicing below
            # reads the raw base arrays.
            store = store.merged()
        elif isinstance(store, LabelIndex):
            store = FlatLabelStore.from_index(store)
        else:
            store = _pack_any(store)
        if ranges is None:
            if num_shards is None:
                raise ShardError("split() needs num_shards or ranges")
            ranges = split_ranges(store.n, num_shards)
        else:
            ranges = [(int(lo), int(hi)) for lo, hi in ranges]
            _validate_ranges(ranges)
            if ranges[-1][1] != store.n:
                raise ShardError(
                    f"ranges cover [0, {ranges[-1][1]}) but the store "
                    f"has {store.n} vertices"
                )
            if num_shards is not None and num_shards != len(ranges):
                raise ShardError(
                    f"num_shards={num_shards} disagrees with "
                    f"{len(ranges)} explicit ranges"
                )
        shards = [_slice_store(store, lo, hi) for lo, hi in ranges]
        return cls(shards, ranges)

    # -- incremental updates -------------------------------------------------
    @property
    def has_pending_updates(self) -> bool:
        """Whether any shard holds staged updates not yet reconciled."""
        return bool(self._dirty)

    @property
    def dirty_shards(self) -> list[int]:
        """Ids of the shards whose labels changed since the last reconcile."""
        return sorted(self._dirty)

    def apply_updates(self, delta) -> list[int]:
        """Stage a :class:`~repro.core.labels.LabelDelta` onto the shards.

        Each carried vertex's replacement label is routed to the shard
        owning it (vertex ids re-based to the shard's local range;
        pivot ids are global and pass through untouched) and staged as
        that shard's query-time overlay.  Only the shards whose vertex
        ranges contain updated vertices are marked dirty —
        :meth:`reconcile` later rewrites exactly those files.  Returns
        the affected shard ids.
        """
        from repro.core.labels import LabelDelta

        if delta.n != self.n or delta.directed != self.directed:
            raise ShardError(
                f"delta shape (|V|={delta.n}, directed={delta.directed}) "
                f"does not match store (|V|={self.n}, "
                f"directed={self.directed})"
            )
        per_shard: dict[int, LabelDelta] = {}

        def local_delta(v: int) -> tuple[LabelDelta, int]:
            i = self.shard_of(v)
            lo, hi = self.ranges[i]
            d = per_shard.get(i)
            if d is None:
                d = LabelDelta.empty(hi - lo, self.directed)
                per_shard[i] = d
            return d, v - lo

        for v, label in delta.out.items():
            d, local = local_delta(v)
            d.out[local] = label
        if self.directed:
            for v, label in delta.inn.items():
                d, local = local_delta(v)
                d.inn[local] = label
        for i, d in per_shard.items():
            self.shards[i].apply_updates(d)
        self._dirty.update(per_shard)
        return sorted(per_shard)

    def reconcile(self, path) -> list[int]:
        """Flush staged updates to the shard directory at ``path``.

        Rewrites **only** the shards whose vertex ranges changed (in
        their manifest-recorded format), refreshes those entries'
        SHA-256 checksums and entry counts, and leaves every untouched
        shard file byte-for-byte identical — reconciling an N-shard
        directory after a localized update costs one shard's worth of
        IO, not N.  The rewrite is crash-consistent: each changed
        shard lands in a **new revision file** (``shard-0007-r3.idx2``)
        first, the manifest then flips to the new generation in one
        atomic rename, and only afterwards are the replaced files (and
        any orphans of earlier interrupted runs) removed — a crash at
        any point leaves a manifest whose named files all exist and
        checksum clean.  The in-memory store swaps the merged shards
        in (releasing any stale file mappings), leaving it
        overlay-free and consistent with the directory.  Returns the
        rewritten shard ids.
        """
        root = Path(path)
        manifest = load_manifest(root)
        if (
            manifest["n"] != self.n
            or manifest["directed"] != self.directed
            or len(manifest["shards"]) != len(self.shards)
        ):
            raise ShardError(
                f"{root}: manifest describes a different shard layout; "
                "reconcile only the directory this store was loaded from"
            )
        for entry, (lo, hi) in zip(manifest["shards"], self.ranges):
            if (entry["lo"], entry["hi"]) != (lo, hi):
                raise ShardError(
                    f"{root}: manifest range [{entry['lo']}, {entry['hi']}) "
                    f"does not match store range [{lo}, {hi})"
                )
        rewritten = sorted(self._dirty)
        for i in rewritten:
            entry = manifest["shards"][i]
            merged = self.shards[i].merged()
            # Match the on-disk per-shard format recorded by save().
            if entry["file"].endswith(".idx3"):
                if not isinstance(merged, QuantizedLabelStore):
                    merged = QuantizedLabelStore.from_flat(merged)
            elif isinstance(merged, QuantizedLabelStore):
                merged = merged.to_flat()
            new_name = _next_shard_file(entry["file"])
            merged.save(root / new_name)
            entry["file"] = new_name
            entry["sha256"] = _sha256_file(root / new_name)
            entry["entries"] = merged.total_entries(include_trivial=True)
            stale = self.shards[i]
            self.shards[i] = merged
            if stale is not merged:
                stale.close()
        payload = json.dumps(manifest, indent=2).encode() + b"\n"
        with atomic_binary_writer(root / MANIFEST_NAME) as fh:
            fh.write(payload)
        # The manifest now owns the new generation; drop the replaced
        # files and any orphans a previously interrupted reconcile
        # left behind.
        live = {entry["file"] for entry in manifest["shards"]}
        for candidate in root.iterdir():
            if (
                _SHARD_FILE_RE.match(candidate.name)
                and candidate.name not in live
            ):
                candidate.unlink()
        self._dirty.clear()
        return rewritten

    # -- vertex -> shard routing ---------------------------------------------
    def shard_of(self, v: int) -> int:
        """Index of the shard owning global vertex ``v``."""
        if not 0 <= v < self.n:
            raise IndexError(f"vertex {v} out of range [0, {self.n})")
        return bisect_right(self._los, v) - 1

    def _locate(self, v: int) -> tuple[FlatLabelStore, int]:
        i = self.shard_of(v)
        return self.shards[i], v - self._los[i]

    # -- LabelStore accessors ------------------------------------------------
    def out_label(self, v: int) -> list[tuple[int, float]]:
        """``Lout(v)`` as a fresh (pivot, dist) list, sorted by pivot."""
        shard, local = self._locate(v)
        return shard.out_label(local)

    def in_label(self, v: int) -> list[tuple[int, float]]:
        """``Lin(v)`` as a fresh (pivot, dist) list, sorted by pivot."""
        shard, local = self._locate(v)
        return shard.in_label(local)

    def label_of(self, v: int, out: bool = True) -> list[tuple[int, float]]:
        """The (pivot, dist) list of ``v``'s out- or in-label."""
        return self.out_label(v) if out else self.in_label(v)

    # -- querying ------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact ``dist(s, t)``; ``inf`` when unreachable.

        Same dict-probe evaluation as the flat store, with the two
        sides read from (possibly) different shards.
        """
        if s == t:
            if not 0 <= s < self.n:
                raise IndexError(f"query ({s}, {t}) out of range [0, {self.n})")
            return 0.0
        a, al = self._locate(s)
        b, bl = self._locate(t)
        ap, ad, ao, ae = a.out_slice(al)
        bp, bd, bo, be = b.in_slice(bl)
        return probe_min_distance(ap, ad, ao, ae, bp, bd, bo, be)

    def query_via(self, s: int, t: int) -> tuple[float, int]:
        """Like :meth:`query` but also return the best pivot (-1 if none)."""
        if s == t:
            if not 0 <= s < self.n:
                raise IndexError(f"query ({s}, {t}) out of range [0, {self.n})")
            return 0.0, s
        a, al = self._locate(s)
        b, bl = self._locate(t)
        ap, ad, ao, ae = a.out_slice(al)
        bp, bd, bo, be = b.in_slice(bl)
        return merge_min_via(ap, ad, ao, ae, bp, bd, bo, be)

    def query_group(self, s: int, targets: Sequence[int]) -> list[float]:
        """Distances from ``s`` to each target, amortising the source side.

        The batched-evaluation hook
        (:func:`repro.oracle.batch.evaluate_batch` detects it): the
        ``Lout(s)`` dict is built once from ``s``'s shard and probed
        with every target's in-label from whichever shard owns it.
        """
        a, al = self._locate(s)
        ap, ad, ao, ae = a.out_slice(al)
        src = dict(zip(ap[ao:ae], ad[ao:ae]))
        get = src.get
        out: list[float] = []
        append = out.append
        for t in targets:
            if t == s:
                append(0.0)
                continue
            b, bl = self._locate(t)
            bp, bd, bo, be = b.in_slice(bl)
            append(probe_slice_min(get, bp, bd, bo, be))
        return out

    # -- statistics ----------------------------------------------------------
    def total_entries(self, include_trivial: bool = False) -> int:
        """Total label entries (self entries excluded unless asked)."""
        total = sum(
            shard.total_entries(include_trivial=True) for shard in self.shards
        )
        trivial = self.n * (2 if self.directed else 1)
        return total if include_trivial else total - trivial

    def size_in_bytes(self) -> int:
        """Index size under the paper's 5-bytes-per-entry convention."""
        return self.total_entries(include_trivial=True) * BYTES_PER_ENTRY

    def storage_bytes(self) -> int:
        """Actual bytes held by the shard arrays (offsets included)."""
        return sum(shard.storage_bytes() for shard in self.shards)

    def stats(self) -> LabelStats:
        """Aggregate size statistics (same semantics as the flat store)."""
        shard_stats = [shard.stats() for shard in self.shards]
        total = sum(st.total_entries for st in shard_stats)
        return LabelStats(
            num_vertices=self.n,
            total_entries=total,
            max_label_size=max(st.max_label_size for st in shard_stats),
            avg_label_size=total / self.n if self.n else 0.0,
            index_bytes=self.size_in_bytes(),
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def is_mmapped(self) -> bool:
        """Whether every shard is a zero-copy view over a file mapping."""
        return all(shard.is_mmapped for shard in self.shards)

    # -- serialization -------------------------------------------------------
    def save(self, path, overwrite: bool = False, format: str = "v2") -> Path:
        """Write the shard directory: N label files + ``manifest.json``.

        ``format`` selects the per-shard file format: ``"v2"`` flat
        CSR blobs or ``"v3"`` compact quantized arrays (~25-50% of the
        v2 bytes; shards are converted in either direction as needed).
        Each shard file is written atomically, the manifest last — a
        reader that finds a manifest therefore finds the shard files
        it names.  An existing shard directory (one with a manifest)
        is refused unless ``overwrite=True``, which also removes stale
        ``shard-*.idx2`` / ``shard-*.idx3`` files beyond the new shard
        set.
        """
        if format not in SHARD_FILE_FORMATS:
            raise ValueError(
                f"unknown shard format {format!r}; expected one of "
                f"{tuple(SHARD_FILE_FORMATS)}"
            )
        root = Path(path)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists() and not overwrite:
            raise FileExistsError(
                f"{root}: already a shard directory; pass overwrite=True "
                "(CLI: --force) to replace it"
            )
        root.mkdir(parents=True, exist_ok=True)
        entries = []
        for i, ((lo, hi), shard) in enumerate(zip(self.ranges, self.shards)):
            name = SHARD_FILE_FORMATS[format].format(i)
            if format == "v3":
                out = QuantizedLabelStore.from_flat(shard)
            elif isinstance(shard, QuantizedLabelStore):
                out = shard.to_flat()
            else:
                out = shard
            out.save(root / name)
            entries.append(
                {
                    "id": i,
                    "lo": lo,
                    "hi": hi,
                    "file": name,
                    "sha256": _sha256_file(root / name),
                    "entries": shard.total_entries(include_trivial=True),
                }
            )
        if overwrite:
            for stale in root.iterdir():
                if (
                    _SHARD_FILE_RE.match(stale.name)
                    and stale.name not in {e["file"] for e in entries}
                ):
                    stale.unlink()
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "n": self.n,
            "directed": self.directed,
            "num_shards": len(self.shards),
            "label_format": format,
            "shards": entries,
        }
        payload = json.dumps(manifest, indent=2).encode() + b"\n"
        with atomic_binary_writer(manifest_path) as fh:
            fh.write(payload)
        return manifest_path

    @classmethod
    def load(
        cls,
        path,
        use_mmap: bool = False,
        verify_checksums: bool = True,
    ) -> "ShardedLabelStore":
        """Open a shard directory written by :meth:`save`.

        Validates the manifest before opening anything: schema, a
        complete gap/overlap-free range cover, every shard file
        present, and (unless ``verify_checksums=False`` — e.g. worker
        processes re-opening a directory the parent already verified)
        SHA-256 checksums.  With ``use_mmap=True`` every shard is
        mapped zero-copy.  Raises :class:`ShardError` on anything
        inconsistent.
        """
        root = Path(path)
        manifest = load_manifest(root)
        shards = []
        try:
            for entry in manifest["shards"]:
                file_path = root / entry["file"]
                if verify_checksums:
                    digest = _sha256_file(file_path)
                    if digest != entry["sha256"]:
                        raise ShardError(
                            f"{file_path}: checksum mismatch (manifest "
                            f"{entry['sha256'][:12]}..., file "
                            f"{digest[:12]}...) — shard file corrupt or "
                            "replaced; re-run `repro shard`"
                        )
                try:
                    # Sniffs the per-file version byte, so v2 and v3
                    # shard files (and mixed directories) all load.
                    shard = load_store(
                        file_path, prefer_flat=True, use_mmap=use_mmap
                    )
                except ValueError as exc:
                    raise ShardError(f"shard {entry['id']}: {exc}") from exc
                shards.append(shard)
            ranges = [(e["lo"], e["hi"]) for e in manifest["shards"]]
            store = cls(shards, ranges)
        except BaseException:
            for shard in shards:
                shard.close()
            raise
        if store.n != manifest["n"] or store.directed != manifest["directed"]:
            n, d = store.n, store.directed
            store.close()
            raise ShardError(
                f"{root}: shard files describe |V|={n} directed={d}, "
                f"manifest says |V|={manifest['n']} "
                f"directed={manifest['directed']}"
            )
        return store

    def close(self) -> None:
        """Release every shard's file mapping (if any)."""
        for shard in self.shards:
            shard.close()

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"ShardedLabelStore(|V|={self.n}, {kind}, "
            f"shards={len(self.shards)}, entries={self.total_entries()})"
        )


def load_manifest(path) -> dict:
    """Read and validate ``manifest.json`` of a shard directory.

    Returns the parsed manifest; raises :class:`ShardError` with a
    pointed message on a missing/garbled manifest, a bad schema, a
    range cover with overlaps or gaps, or missing shard files.
    """
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not root.is_dir():
        raise ShardError(f"{root}: not a shard directory")
    if not manifest_path.is_file():
        raise ShardError(
            f"{root}: no {MANIFEST_NAME} — not a shard directory "
            "(create one with `repro shard`)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardError(f"{manifest_path}: unreadable manifest: {exc}") from exc
    if (
        not isinstance(manifest, dict)
        or manifest.get("format") != _MANIFEST_FORMAT
    ):
        raise ShardError(f"{manifest_path}: not a {_MANIFEST_FORMAT} manifest")
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ShardError(
            f"{manifest_path}: unsupported manifest version "
            f"{manifest.get('version')!r}"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise ShardError(f"{manifest_path}: manifest lists no shards")
    for entry in shards:
        missing = {"id", "lo", "hi", "file", "sha256"} - set(entry)
        if missing:
            raise ShardError(
                f"{manifest_path}: shard entry {entry.get('id')!r} missing "
                f"fields {sorted(missing)}"
            )
    ranges = [(e["lo"], e["hi"]) for e in shards]
    try:
        _validate_ranges(ranges)
    except ShardError as exc:
        raise ShardError(f"{manifest_path}: {exc}") from exc
    if manifest.get("n") != ranges[-1][1]:
        raise ShardError(
            f"{manifest_path}: ranges cover [0, {ranges[-1][1]}) but "
            f"manifest says n={manifest.get('n')}"
        )
    for entry in shards:
        if not (root / entry["file"]).is_file():
            raise ShardError(
                f"{root}: shard file {entry['file']!r} (vertices "
                f"[{entry['lo']}, {entry['hi']})) is missing"
            )
    return manifest


def _validate_ranges(ranges: Sequence[tuple[int, int]]) -> None:
    """Require a sorted, contiguous, gap/overlap-free cover of [0, n)."""
    if not ranges:
        raise ShardError("no shard ranges")
    if ranges[0][0] != 0:
        raise ShardError(
            f"shard ranges must start at vertex 0, got {ranges[0][0]}"
        )
    for (lo, hi), (nlo, nhi) in zip(ranges, ranges[1:]):
        if nlo < hi:
            raise ShardError(
                f"overlapping shard ranges: [{lo}, {hi}) and [{nlo}, {nhi})"
            )
        if nlo > hi:
            raise ShardError(
                f"gap in shard ranges between [{lo}, {hi}) and [{nlo}, {nhi})"
            )
    for lo, hi in ranges:
        if hi <= lo:
            raise ShardError(f"empty shard range [{lo}, {hi})")


def _pack_any(store: LabelStore) -> FlatLabelStore:
    """Pack any :class:`LabelStore` into CSR arrays via its accessors.

    The generic path behind :meth:`ShardedLabelStore.split` for
    backends that are neither :class:`FlatLabelStore` nor
    :class:`LabelIndex` — e.g. re-splitting an already-sharded store
    to a different shard count.
    """

    def pack(label_of):
        offsets = array("q", [0])
        pivots = array("i")
        dists = array("d")
        for v in range(store.n):
            for p, d in label_of(v):
                pivots.append(p)
                dists.append(d)
            offsets.append(len(pivots))
        return offsets, pivots, dists

    oo, op, od = pack(store.out_label)
    if store.directed:
        io, ip, id_ = pack(store.in_label)
    else:
        io, ip, id_ = oo, op, od
    rank = getattr(store, "rank", None)
    return FlatLabelStore(
        store.n,
        store.directed,
        oo,
        op,
        od,
        io,
        ip,
        id_,
        list(rank) if rank is not None else None,
    )


def _slice_store(store: FlatLabelStore, lo: int, hi: int) -> FlatLabelStore:
    """Copy vertices ``[lo, hi)`` of a flat store into a local-id store."""

    def side(offsets, pivots, dists):
        base = offsets[lo]
        local_offsets = array("q", (offsets[v] - base for v in range(lo, hi + 1)))
        end = offsets[hi]
        return (
            local_offsets,
            array("i", pivots[base:end]),
            array("d", dists[base:end]),
        )

    oo, op, od = side(store.out_offsets, store.out_pivots, store.out_dists)
    if store.directed:
        io, ip, id_ = side(store.in_offsets, store.in_pivots, store.in_dists)
    else:
        io, ip, id_ = oo, op, od
    rank = list(store.rank[lo:hi]) if store.rank is not None else None
    return FlatLabelStore(
        hi - lo, store.directed, oo, op, od, io, ip, id_, rank
    )
